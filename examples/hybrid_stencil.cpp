// Hybrid MPI + threads: 1-D heat diffusion with halo exchange.
//
// This is the workload class the paper's introduction motivates: instead of
// one MPI process per core ("pure MPI"), each node runs ONE process with
// several compute threads (saving memory/TLB), and the threads call the
// communication library concurrently -- which requires the library to be
// thread-safe (MPI_THREAD_MULTIPLE, here LockMode::kFine).
//
// Decomposition: the global 1-D domain is split across nodes; within a
// node, worker threads split the local slab. After each iteration the two
// boundary threads exchange halo cells with the neighbour nodes *in
// parallel* (left and right halos from different threads), while inner
// threads only synchronize on the node-local barrier.
#include <cmath>
#include <cstdio>
#include <vector>

#include "madmpi/madmpi.hpp"
#include "sync/barrier.hpp"

using namespace pm2;

namespace {

constexpr int kNodes = 4;
constexpr int kThreadsPerNode = 4;
constexpr int kCellsPerNode = 1 << 12;
constexpr int kIterations = 25;
constexpr double kAlpha = 0.25;

struct NodeState {
  std::vector<double> cells;      // local slab + 2 halo cells
  std::vector<double> next;
  std::unique_ptr<sync::Barrier> barrier;
  double local_sum = 0;
};

}  // namespace

int main() {
  nm::ClusterConfig cfg;
  cfg.nodes = kNodes;
  cfg.nm.lock = nm::LockMode::kFine;  // threads enter the library in parallel

  nm::Cluster world(cfg);
  std::vector<NodeState> state(kNodes);

  for (int node = 0; node < kNodes; ++node) {
    NodeState& ns = state[static_cast<std::size_t>(node)];
    ns.cells.assign(kCellsPerNode + 2, 0.0);
    ns.next.assign(kCellsPerNode + 2, 0.0);
    ns.barrier = std::make_unique<sync::Barrier>(world.sched(node),
                                                 kThreadsPerNode, "stencil");
    // Initial condition: a hot spike in the middle of node 1.
    if (node == 1) ns.cells[kCellsPerNode / 2 + 1] = 1000.0;

    for (int t = 0; t < kThreadsPerNode; ++t) {
      world.spawn(node, [&world, &ns, node, t] {
        madmpi::Comm comm(world, node);
        auto& sched = world.sched(node);
        const int chunk = kCellsPerNode / kThreadsPerNode;
        const int lo = 1 + t * chunk;
        const int hi = lo + chunk;  // [lo, hi)

        for (int iter = 0; iter < kIterations; ++iter) {
          // Boundary threads exchange halos with the neighbour nodes.
          // Thread 0 handles the left halo, the last thread the right one:
          // two threads of the same node inside the library concurrently.
          if (t == 0 && node > 0) {
            comm.sendrecv(node - 1, 10, &ns.cells[1], sizeof(double),
                          node - 1, 11, &ns.cells[0], sizeof(double));
          }
          if (t == kThreadsPerNode - 1 && node < kNodes - 1) {
            comm.sendrecv(node + 1, 11, &ns.cells[kCellsPerNode], sizeof(double),
                          node + 1, 10, &ns.cells[kCellsPerNode + 1],
                          sizeof(double));
          }
          ns.barrier->arrive_and_wait();

          // Compute: 3-point stencil over this thread's cells. Cost model:
          // ~2 ns per cell of simulated FP work.
          for (int i = lo; i < hi; ++i) {
            ns.next[static_cast<std::size_t>(i)] =
                ns.cells[static_cast<std::size_t>(i)] +
                kAlpha * (ns.cells[static_cast<std::size_t>(i) - 1] -
                          2 * ns.cells[static_cast<std::size_t>(i)] +
                          ns.cells[static_cast<std::size_t>(i) + 1]);
          }
          sched.work(sim::nanoseconds(2) * chunk);
          ns.barrier->arrive_and_wait();

          if (t == 0) ns.cells.swap(ns.next);
          ns.barrier->arrive_and_wait();
        }

        // Node-local reduction by thread 0, then a global allreduce.
        if (t == 0) {
          double sum = 0;
          for (int i = 1; i <= kCellsPerNode; ++i) {
            sum += ns.cells[static_cast<std::size_t>(i)];
          }
          ns.local_sum = sum;
          double total = sum;
          comm.allreduce_sum(&total, 1);
          if (node == 0) {
            std::printf("after %d iterations: global heat = %.6f "
                        "(conservation check, expect ~1000)\n",
                        kIterations, total);
          }
        }
      }, "worker" + std::to_string(t), t % 4);
    }
  }

  world.run();

  std::printf("done at %s; node heat distribution:",
              sim::format_time(world.engine().now()).c_str());
  for (int node = 0; node < kNodes; ++node) {
    std::printf(" n%d=%.3f", node, state[static_cast<std::size_t>(node)].local_sum);
  }
  std::printf("\nhybrid model: %d nodes x %d threads, fine-grain locking "
              "(MPI_THREAD_MULTIPLE equivalent)\n",
              kNodes, kThreadsPerNode);
  return 0;
}
