// Quickstart: build a two-node virtual cluster, exchange messages through
// NewMadeleine's native API, and measure a pingpong on the virtual clock.
//
//   $ ./build/examples/quickstart
//
// Everything runs on the simulated testbed: two quad-core Xeon-like nodes
// connected by a Myri-10G-like fabric, with virtual-nanosecond timing.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "nmad/cluster.hpp"
#include "obs/metrics.hpp"

using namespace pm2;

int main() {
  // 0. Optional: switch on the cross-layer metrics registry. Components
  //    register their instruments at construction; enabling the registry
  //    makes them record (it never changes virtual-time results).
  obs::MetricsRegistry::global().set_enabled(true);

  // 1. Describe the world: 2 nodes, defaults everywhere (quad-core
  //    topology, one Myri-10G rail, fine-grain locking, busy waiting).
  nm::ClusterConfig cfg;
  cfg.nodes = 2;

  nm::Cluster world(cfg);

  // Stage breakdown of every message (pack -> submit -> wire -> unpack ->
  // notify), cheap enough to leave on.
  obs::FlowTracer& flows = world.enable_flow_trace();

  // 2. Spawn one application thread per node. Threads use plain sequential
  //    code; the scheduler interleaves them on the virtual clock.
  world.spawn(0, [&world] {
    nm::Core& core = world.core(0);
    nm::Gate* to_peer = world.gate(0, 1);

    // A friendly hello...
    const char hello[] = "hello from node 0";
    core.send(to_peer, /*tag=*/1, hello, sizeof(hello));

    // ...and a non-blocking receive for the reply.
    char reply[64] = {};
    nm::Request* rr = core.irecv(to_peer, 2, reply, sizeof(reply));
    core.wait(rr);
    std::printf("[node0 @ %s] got reply: \"%s\" (%zu bytes)\n",
                sim::format_time(world.engine().now()).c_str(), reply,
                rr->received_length());
    core.release(rr);

    // 3. A quick latency probe: 100 pingpongs of 8 bytes.
    std::uint8_t ping[8] = {}, pong[8] = {};
    const sim::Time t0 = world.engine().now();
    const int iters = 100;
    for (int i = 0; i < iters; ++i) {
      core.send(to_peer, 3, ping, sizeof(ping));
      core.recv(to_peer, 4, pong, sizeof(pong));
    }
    const double oneway_us =
        sim::to_us(world.engine().now() - t0) / (2.0 * iters);
    std::printf("[node0] 8-byte one-way latency: %.3f us\n", oneway_us);
  });

  world.spawn(1, [&world] {
    nm::Core& core = world.core(1);
    nm::Gate* to_peer = world.gate(1, 0);

    char buf[64] = {};
    const std::size_t n = core.recv(to_peer, 1, buf, sizeof(buf));
    std::printf("[node1 @ %s] received: \"%s\" (%zu bytes)\n",
                sim::format_time(world.engine().now()).c_str(), buf, n);

    const char reply[] = "hi node 0, node 1 here";
    core.send(to_peer, 2, reply, sizeof(reply));

    std::uint8_t ping[8] = {};
    for (int i = 0; i < 100; ++i) {
      core.recv(to_peer, 3, ping, sizeof(ping));
      core.send(to_peer, 4, ping, sizeof(ping));
    }
  });

  // 4. Run the world until every thread finishes.
  world.run();
  std::printf("simulation finished at %s after %llu events\n",
              sim::format_time(world.engine().now()).c_str(),
              static_cast<unsigned long long>(world.engine().events_executed()));

  // 5. What happened, layer by layer: every registered instrument (lock
  //    traffic, context switches, poll passes, NIC bytes) plus the
  //    per-stage latency breakdown of all traced messages.
  std::printf("\n%s\n", obs::MetricsRegistry::global().to_table().c_str());
  std::printf("%s", flows.to_table().c_str());
  return 0;
}
