// Multirail: the optimization layer splits bulk data across two NICs.
//
// The paper's Fig. 1 core layer applies "dynamic scheduling optimizations
// ... such as packet reordering, coalescing, multirail distribution". Here
// each node owns a Myri-10G rail and an InfiniBand DDR rail; the split
// strategy stripes rendezvous data across both, weighted by bandwidth.
#include <cstdio>
#include <vector>

#include "nmad/cluster.hpp"

using namespace pm2;

namespace {

constexpr std::size_t kMessage = 4 * 1024 * 1024;

double run_transfer(bool multirail) {
  nm::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.rails = {net::NicParams::myri10g()};
  if (multirail) cfg.rails.push_back(net::NicParams::connectx_ib());
  cfg.nm.strategy = multirail ? nm::StrategyKind::kSplit
                              : nm::StrategyKind::kAggreg;

  nm::Cluster world(cfg);
  double gbps = 0;

  world.spawn(0, [&world, &gbps] {
    nm::Core& core = world.core(0);
    nm::Gate* g = world.gate(0, 1);
    std::vector<std::uint8_t> data(kMessage);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<std::uint8_t>(i * 31);
    }
    const sim::Time t0 = world.engine().now();
    core.send(g, 1, data.data(), data.size());
    std::uint8_t ack = 0;
    core.recv(g, 2, &ack, 1);  // remote confirms full arrival
    const sim::Time dt = world.engine().now() - t0;
    gbps = static_cast<double>(kMessage) / sim::to_sec(dt) / 1e9;
  });

  world.spawn(1, [&world] {
    nm::Core& core = world.core(1);
    nm::Gate* g = world.gate(1, 0);
    std::vector<std::uint8_t> buf(kMessage);
    const std::size_t n = core.recv(g, 1, buf.data(), buf.size());
    // Integrity check before acking.
    bool ok = n == kMessage;
    for (std::size_t i = 0; ok && i < buf.size(); i += 4097) {
      ok = buf[i] == static_cast<std::uint8_t>(i * 31);
    }
    std::uint8_t ack = ok ? 1 : 0;
    core.send(g, 2, &ack, 1);
    if (!ok) std::printf("INTEGRITY FAILURE\n");
  });

  world.run();
  return gbps;
}

}  // namespace

int main() {
  std::printf("transferring %zu MiB (rendezvous, ack-confirmed)\n\n",
              kMessage / (1024 * 1024));
  const double single = run_transfer(false);
  const double dual = run_transfer(true);
  std::printf("%-44s %8.3f GB/s\n", "single rail (Myri-10G):", single);
  std::printf("%-44s %8.3f GB/s\n", "dual rail (Myri-10G + ConnectX IB, split):",
              dual);
  std::printf("\nrail aggregation speedup: %.2fx\n", dual / single);
  return 0;
}
