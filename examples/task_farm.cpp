// Master/worker task farm: wildcard receives + passive waiting.
//
// A master node hands out work items; worker nodes each run several
// threads that fetch, compute, and return results. Two library features
// carry the pattern:
//   * kAnyTag receives -- the master accepts results from any outstanding
//     item without polling each tag separately;
//   * passive waiting + PIOMan hooks -- worker threads block while their
//     next item is in flight, so the cores run other worker threads
//     instead of spinning (the paper's Sec. 3.3 policy earning its keep).
#include <cstdio>
#include <vector>

#include "nmad/cluster.hpp"
#include "sync/mutex.hpp"

using namespace pm2;

namespace {

constexpr int kWorkers = 3;          // worker nodes 1..kWorkers
constexpr int kThreadsPerWorker = 6; // oversubscribed on 4 cores
constexpr int kItems = 60;
constexpr sim::Time kItemCost = sim::microseconds(80);

struct WorkItem {
  std::uint32_t id;
  std::uint32_t payload;
};
struct ResultMsg {
  std::uint32_t id;
  std::uint64_t value;
};

}  // namespace

int main() {
  nm::ClusterConfig cfg;
  cfg.nodes = 1 + kWorkers;
  cfg.nm.lock = nm::LockMode::kFine;
  cfg.nm.wait = nm::WaitMode::kPassive;  // block, don't spin
  cfg.nm.progress = nm::ProgressMode::kPiomanHooks;
  nm::Cluster world(cfg);

  // --- master: deal items round-robin-on-demand, collect results ----------
  world.spawn(0, [&world] {
    nm::Core& c = world.core(0);
    std::uint32_t next_item = 0;
    int outstanding = 0;
    std::uint64_t checksum = 0;

    // Prime every worker thread with one item.
    for (int w = 1; w <= kWorkers; ++w) {
      for (int t = 0; t < kThreadsPerWorker && next_item < kItems; ++t) {
        WorkItem item{next_item, next_item * 7};
        ++next_item;
        c.send(world.gate(0, w), 1, &item, sizeof(item));
        ++outstanding;
      }
    }
    // One outstanding wildcard receive per worker gate; poll them
    // round-robin (receives cannot be cancelled, so the fixed set is the
    // clean pattern), refilling whichever worker just delivered.
    std::vector<ResultMsg> bufs(static_cast<std::size_t>(kWorkers));
    std::vector<nm::Request*> reqs(static_cast<std::size_t>(kWorkers));
    for (int w = 1; w <= kWorkers; ++w) {
      reqs[static_cast<std::size_t>(w - 1)] =
          c.irecv(world.gate(0, w), nm::kAnyTag,
                  &bufs[static_cast<std::size_t>(w - 1)], sizeof(ResultMsg));
    }
    int received = 0;
    auto& ctx = mth::ExecContext::current();
    while (received < kItems) {
      bool any = false;
      for (int w = 1; w <= kWorkers; ++w) {
        const std::size_t i = static_cast<std::size_t>(w - 1);
        if (reqs[i] == nullptr || !c.test(reqs[i])) continue;
        any = true;
        checksum += bufs[i].value;
        ++received;
        --outstanding;
        c.release(reqs[i]);
        reqs[i] = nullptr;
        if (next_item < kItems) {
          WorkItem item{next_item, next_item * 7};
          ++next_item;
          c.send(world.gate(0, w), 1, &item, sizeof(item));
          ++outstanding;
        }
        // Always re-arm; receives left over when the farm drains are
        // simply abandoned (never matched, freed with the core).
        reqs[i] = c.irecv(world.gate(0, w), nm::kAnyTag, &bufs[i],
                          sizeof(ResultMsg));
      }
      if (!any) c.progress(ctx);
    }
    (void)outstanding;
    // Poison pills: one per worker thread.
    for (int w = 1; w <= kWorkers; ++w) {
      for (int t = 0; t < kThreadsPerWorker; ++t) {
        WorkItem stop{0xFFFFFFFF, 0};
        c.send(world.gate(0, w), 1, &stop, sizeof(stop));
      }
    }
    std::printf("master: %d items processed, checksum %llu, finished at %s\n",
                kItems, static_cast<unsigned long long>(checksum),
                sim::format_time(world.engine().now()).c_str());
  }, "master", 0);

  // --- workers: several threads per node share the gate to the master -----
  for (int w = 1; w <= kWorkers; ++w) {
    for (int t = 0; t < kThreadsPerWorker; ++t) {
      world.spawn(w, [&world, w] {
        nm::Core& c = world.core(w);
        auto& sched = world.sched(w);
        for (;;) {
          WorkItem item{};
          c.recv(world.gate(w, 0), 1, &item, sizeof(item));  // passive wait
          if (item.id == 0xFFFFFFFF) break;                  // poison pill
          sched.work(kItemCost);                             // "compute"
          ResultMsg res{item.id,
                        static_cast<std::uint64_t>(item.payload) * 3 + 1};
          c.send(world.gate(w, 0), 100 + static_cast<nm::Tag>(w), &res,
                 sizeof(res));
        }
      }, "worker" + std::to_string(w) + "." + std::to_string(t));
    }
  }

  world.run();

  // Expected checksum: sum over items of (7 i) * 3 + 1.
  std::uint64_t expect = 0;
  for (std::uint32_t i = 0; i < kItems; ++i) expect += 21ull * i + 1;
  std::printf("expected checksum: %llu\n",
              static_cast<unsigned long long>(expect));
  std::printf("%d worker threads on %d quad-core nodes drained %d items; "
              "threads blocked passively\nbetween items (PIOMan hooks "
              "progressed the transfers)\n",
              kWorkers * kThreadsPerWorker, kWorkers, kItems);
  return 0;
}
