// Communication/computation overlap with background progression.
//
// The paper's Sec. 4.1 point: non-blocking primitives only overlap if
// *something* makes them progress while the application computes. This
// example streams large (rendezvous) blocks through a two-stage pipeline
// and compares:
//   a) app-driven progression -- the rendezvous handshake stalls until the
//      application re-enters the library, so overlap is poor;
//   b) PIOMan hooks -- idle cores answer the handshake in the background,
//      overlapping the transfer with the computation.
#include <cstdio>
#include <vector>

#include "nmad/cluster.hpp"

using namespace pm2;

namespace {

constexpr std::size_t kBlock = 256 * 1024;  // rendezvous territory
constexpr int kBlocks = 16;
constexpr sim::Time kComputePerBlock = sim::microseconds(200);

double run_pipeline(nm::ProgressMode progress) {
  nm::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.nm.lock = nm::LockMode::kFine;
  cfg.nm.progress = progress;

  nm::Cluster world(cfg);
  double elapsed_ms = 0;

  // Producer: sends block i, then "post-processes" (computes) while the
  // next transfer should progress in the background.
  world.spawn(0, [&world, &elapsed_ms] {
    nm::Core& core = world.core(0);
    nm::Gate* g = world.gate(0, 1);
    auto& sched = world.sched(0);
    std::vector<std::uint8_t> block(kBlock, 0x5A);

    const sim::Time t0 = world.engine().now();
    nm::Request* inflight = nullptr;
    for (int i = 0; i < kBlocks; ++i) {
      nm::Request* sr = core.isend(g, 100 + static_cast<nm::Tag>(i),
                                   block.data(), block.size());
      // Compute on the previous block while this one flies.
      sched.work(kComputePerBlock);
      if (inflight != nullptr) {
        core.wait(inflight);
        core.release(inflight);
      }
      inflight = sr;
    }
    core.wait(inflight);
    core.release(inflight);
    // Wait for the consumer's final ack.
    std::uint8_t ack = 0;
    core.recv(g, 999, &ack, 1);
    elapsed_ms = sim::to_us(world.engine().now() - t0) / 1000.0;
  }, "producer", 0);

  // Consumer: double-buffered receives. The NEXT block's receive is posted
  // before computing on the current one, so the rendezvous announcement
  // always finds a posted receive -- background progression (when enabled)
  // can then grant it and land the data while both sides compute.
  world.spawn(1, [&world] {
    nm::Core& core = world.core(1);
    nm::Gate* g = world.gate(1, 0);
    auto& sched = world.sched(1);
    std::vector<std::uint8_t> buf[2] = {
        std::vector<std::uint8_t>(kBlock), std::vector<std::uint8_t>(kBlock)};
    nm::Request* rr[2] = {nullptr, nullptr};
    rr[0] = core.irecv(g, 100, buf[0].data(), kBlock);
    for (int i = 0; i < kBlocks; ++i) {
      core.wait(rr[i % 2]);
      core.release(rr[i % 2]);
      if (i + 1 < kBlocks) {
        rr[(i + 1) % 2] = core.irecv(g, 100 + static_cast<nm::Tag>(i + 1),
                                     buf[(i + 1) % 2].data(), kBlock);
      }
      sched.work(kComputePerBlock);  // consume the block
    }
    std::uint8_t ack = 1;
    core.send(g, 999, &ack, 1);
  }, "consumer", 0);

  world.run();
  return elapsed_ms;
}

}  // namespace

int main() {
  std::printf("pipeline: %d blocks of %zu KiB, %s compute per block "
              "(rendezvous protocol)\n\n",
              kBlocks, kBlock / 1024,
              sim::format_time(kComputePerBlock).c_str());

  const double app_driven = run_pipeline(nm::ProgressMode::kAppDriven);
  const double hooks = run_pipeline(nm::ProgressMode::kPiomanHooks);

  std::printf("%-34s %10.3f ms\n", "app-driven progression:", app_driven);
  std::printf("%-34s %10.3f ms\n", "PIOMan hooks (idle-core polling):", hooks);
  std::printf("\nbackground progression speedup: %.2fx\n", app_driven / hooks);
  std::printf("(the rendezvous handshake is answered by idle cores while "
              "both sides compute)\n");
  return 0;
}
