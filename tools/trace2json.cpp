// trace2json -- offline converter from the pm2sim binary trace log to
// ChromeTrace/Perfetto JSON.
//
//   trace2json <in.trace.bin> [out.trace.json]
//
// Merges the per-partition ring logs in canonical (emit time, partition,
// seq) order and renders the exact JSON the simulator's own
// write_timeline() emits -- byte-for-byte, for any worker count of the run
// that produced the log. With no output path the JSON goes to stdout; a
// one-line summary (rings, records, drops, strings) always goes to stderr.
#include <cstdio>
#include <exception>
#include <fstream>
#include <stdexcept>
#include <string>

#include "obs/trace_log.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <in.trace.bin> [out.trace.json]\n"
               "  Converts a pm2sim binary trace log (Cluster::"
               "write_trace_binary)\n"
               "  to ChromeTrace JSON for chrome://tracing or "
               "https://ui.perfetto.dev.\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || argc > 3) return usage(argv[0]);
  const std::string in = argv[1];
  try {
    const pm2::obs::TraceLog::Data data = pm2::obs::TraceLog::read_binary(in);
    const std::string json = pm2::obs::TraceLog::data_to_json(data);
    if (argc == 3) {
      std::ofstream f(argv[2], std::ios::binary);
      if (!f) throw std::runtime_error(std::string("cannot open ") + argv[2]);
      f.write(json.data(), static_cast<std::streamsize>(json.size()));
      if (!f) throw std::runtime_error(std::string("write failed: ") + argv[2]);
    } else {
      std::fwrite(json.data(), 1, json.size(), stdout);
    }
    std::uint64_t dropped = 0;
    for (std::uint64_t d : data.dropped) dropped += d;
    std::fprintf(stderr,
                 "trace2json: %zu ring(s), %zu records, %llu dropped, "
                 "%zu strings <- %s\n",
                 data.rings.size(), data.record_count(),
                 static_cast<unsigned long long>(dropped),
                 data.strings.size(), in.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace2json: %s\n", e.what());
    return 1;
  }
  return 0;
}
